// Command campaignd serves containerdrone campaigns over HTTP: a
// long-running, multi-tenant simulation backend. Clients POST
// versioned JSON campaign requests; campaignd queues them onto a
// bounded queue feeding a fleet of persistent warm workers and
// streams records back over SSE plus aggregates over plain JSON.
//
//	campaignd -addr :8080 -workers 4 -queue 128
//	campaignd -quota-rate 5 -quota-burst 10 -max-in-flight 4
//
// Submit and watch:
//
//	curl -s -XPOST -d '{"schema_version":1,"scenario":"udpflood","runs":16}' \
//	    localhost:8080/v1/campaigns
//	curl -N localhost:8080/v1/jobs/j-00000001/records
//	curl -s localhost:8080/metrics
//
// On SIGINT/SIGTERM campaignd drains gracefully: /healthz flips to
// 503, new submissions are rejected, every accepted job runs to
// completion (bounded by -drain-timeout, after which in-flight jobs
// are canceled and return partial results), then the process exits.
//
// With -journal <dir> accepted jobs are also durable: each admission
// is fsynced to a write-ahead journal before the 202 goes out, and a
// campaignd killed without draining (kill -9, OOM, power loss)
// replays every unsettled job when it boots over the same directory —
// at-least-once execution for every acknowledged submission.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"containerdrone/cliutil"
	"containerdrone/service"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		workers       = flag.Int("workers", 0, "persistent campaign workers (0 = GOMAXPROCS)")
		queue         = flag.Int("queue", 64, "bounded job queue depth (full queue rejects with 429)")
		jobParallel   = flag.Int("job-parallel", 1, "campaign workers per job")
		quotaRate     = flag.Float64("quota-rate", 0, "per-tenant submissions/s token-bucket refill (0 = unlimited)")
		quotaBurst    = flag.Int("quota-burst", 1, "per-tenant token-bucket burst")
		maxInFlight   = flag.Int("max-in-flight", 0, "per-tenant queued+running job cap (0 = unlimited)")
		maxRuns       = flag.Int("max-runs", 65536, "per-job total run cap")
		jobTimeout    = flag.Duration("job-timeout", 60*time.Second, "default per-job deadline")
		maxTimeout    = flag.Duration("max-job-timeout", 10*time.Minute, "cap on request-supplied deadlines")
		drainTimeout  = flag.Duration("drain-timeout", 5*time.Minute, "graceful-drain bound; in-flight jobs are canceled past it")
		journalDir    = flag.String("journal", "", "durable job journal directory: accepted jobs survive a crash and replay on the next boot")
		chaosPanicJob = flag.Int("chaos-panic-job", 0, "TESTING: panic the worker running job j-<n> on its first attempt")
	)
	flag.Parse()

	cfg := service.Config{
		Workers:              *workers,
		QueueDepth:           *queue,
		JobParallel:          *jobParallel,
		QuotaRate:            *quotaRate,
		QuotaBurst:           *quotaBurst,
		MaxInFlightPerTenant: *maxInFlight,
		MaxRunsPerJob:        *maxRuns,
		DefaultTimeout:       *jobTimeout,
		MaxTimeout:           *maxTimeout,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "campaignd: "+format+"\n", args...)
		},
	}
	if *journalDir != "" {
		jl, err := service.OpenJournal(*journalDir)
		if err != nil {
			fatal(err)
		}
		defer jl.Close()
		cfg.Journal = jl
	}
	if *chaosPanicJob > 0 {
		target := fmt.Sprintf("j-%08d", *chaosPanicJob)
		cfg.ChaosHook = func(jobID string, attempt int) {
			if jobID == target && attempt == 0 {
				panic("chaos: injected worker panic for " + jobID)
			}
		}
	}

	svc := service.NewServer(cfg)
	if n := svc.Metrics().JournalReplays; n > 0 {
		fmt.Printf("campaignd: replaying %d incomplete jobs from journal\n", n)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: svc}

	ctx, stop := cliutil.SignalContext(context.Background())
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("campaignd listening on %s\n", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	fmt.Println("campaignd: draining (completing accepted jobs, rejecting new ones)")

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "campaignd: drain timed out, in-flight jobs canceled: %v\n", err)
	}
	// Jobs are settled; now close the listener and let SSE followers
	// finish reading their done events.
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fatal(err)
	}
	m := svc.Metrics()
	fmt.Printf("campaignd: drained cleanly (%d jobs completed, %d failed, %d canceled, %d runs)\n",
		m.Completed, m.Failed, m.Canceled, m.RunsCompleted)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "campaignd:", err)
	os.Exit(1)
}
