// Command loadgen drives a campaignd server with many concurrent
// synthetic clients — the service-level counterpart of cmd/bench. Each
// client loops: submit a small campaign (wait-mode, so one request is
// one full submit→simulate→aggregate round trip), record the outcome
// and latency, honor Retry-After on backpressure rejections, repeat
// until the wall-clock budget expires.
//
//	loadgen -addr http://localhost:8080 -clients 500 -duration 30s
//	loadgen -clients 64 -scenario udpflood -runs 4 -tenants 8
//
// The report prints completed/retried/failed counts, end-to-end
// latency percentiles, and sustained requests/s and runs/s — the
// numbers EXPERIMENTS.md tracks for the service.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"containerdrone/service"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "campaignd base URL")
		clients  = flag.Int("clients", 100, "concurrent client goroutines")
		duration = flag.Duration("duration", 15*time.Second, "wall-clock load duration")
		scenario = flag.String("scenario", "baseline", "scenario each request runs")
		runs     = flag.Int("runs", 1, "runs per request")
		simDur   = flag.Duration("sim-duration", 500*time.Millisecond, "simulated flight length per run")
		tenants  = flag.Int("tenants", 1, "distinct tenant names to spread clients across")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request job deadline")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	deadline, cancel := context.WithTimeout(ctx, *duration)
	defer cancel()

	req := service.CampaignRequest{
		Scenario:  *scenario,
		Runs:      *runs,
		DurationS: simDur.Seconds(),
		TimeoutS:  timeout.Seconds(),
	}

	var (
		completed, retried, failed, runsDone atomic.Int64
		mu                                   sync.Mutex
		latencies                            []float64
	)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := service.NewClient(*addr, fmt.Sprintf("tenant-%d", i%*tenants))
			// Backpressure retry lives in the client now: exponential
			// backoff with full jitter, honoring the server's
			// Retry-After hint. The budget is effectively unbounded —
			// the deadline context is what ends the loop.
			cl.Retry = service.Retry{
				MaxAttempts: 1 << 30,
				OnRetry: func(int, *service.APIError, time.Duration) {
					retried.Add(1)
				},
			}
			for deadline.Err() == nil {
				t0 := time.Now()
				st, err := cl.SubmitWait(deadline, req)
				switch {
				case err == nil && st.Status == service.StatusDone && st.Error == "":
					completed.Add(1)
					runsDone.Add(int64(st.RunsDone))
					mu.Lock()
					latencies = append(latencies, time.Since(t0).Seconds())
					mu.Unlock()
				case deadline.Err() != nil:
					return
				default:
					failed.Add(1)
					// Back off on transport errors (server gone,
					// connection refused) instead of hot-looping.
					select {
					case <-time.After(100 * time.Millisecond):
					case <-deadline.Done():
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()

	sort.Float64s(latencies)
	pct := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p*float64(len(latencies))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(latencies) {
			i = len(latencies) - 1
		}
		return latencies[i]
	}
	fmt.Printf("loadgen: %d clients × %v against %s (%s, %d runs × %v sim)\n",
		*clients, *duration, *addr, *scenario, *runs, *simDur)
	fmt.Printf("  completed %d   retried(backpressure) %d   failed %d\n",
		completed.Load(), retried.Load(), failed.Load())
	fmt.Printf("  requests/s %.1f   runs/s %.1f\n",
		float64(completed.Load())/wall, float64(runsDone.Load())/wall)
	fmt.Printf("  latency p50 %.1fms  p90 %.1fms  p99 %.1fms  max %.1fms\n",
		pct(0.50)*1e3, pct(0.90)*1e3, pct(0.99)*1e3, pct(1.0)*1e3)
	if failed.Load() > 0 {
		os.Exit(1)
	}
}
