// Command rtanalysis prints the fixed-priority response-time analysis
// of the ContainerDrone task set — the schedulability proof the paper
// lists as future work (§VII). For each core it reports utilization,
// per-task worst-case response times against their implicit deadlines,
// and the core's verdict.
//
//	rtanalysis                 # full ContainerDrone deployment
//	rtanalysis -scenario memdos
package main

import (
	"flag"
	"fmt"
	"os"

	"containerdrone"
)

func main() {
	scenario := flag.String("scenario", "baseline", "registered scenario whose task set to analyze (e.g. baseline, memdos)")
	flag.Parse()

	sim, err := containerdrone.New(*scenario)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Println("ContainerDrone response-time analysis (nominal WCETs, no memory contention)")
	allOK := true
	for _, res := range sim.Schedulability() {
		fmt.Printf("\ncore %d — utilization %.3f — schedulable: %v\n",
			res.Core, res.Utilization, res.Schedulable)
		fmt.Printf("  %-16s %5s %10s %10s %10s  %s\n",
			"task", "prio", "period", "wcet", "response", "verdict")
		for _, rt := range res.Tasks {
			verdict := "OK"
			switch {
			case rt.Unbounded:
				verdict = "UNBOUNDED"
			case rt.Busy:
				verdict = "busy-loop"
			case !rt.Schedulable:
				verdict = "MISS"
			}
			period, wcet, resp := "-", "-", "-"
			if !rt.Busy {
				period = rt.Period.String()
				wcet = rt.WCET.String()
				resp = rt.Response.String()
			}
			fmt.Printf("  %-16s %5d %10s %10s %10s  %s\n",
				rt.Name, rt.Priority, period, wcet, resp, verdict)
		}
		if !res.Schedulable {
			allOK = false
		}
	}
	fmt.Println()
	if allOK {
		fmt.Println("verdict: every core schedulable — flight-critical deadlines provably met")
	} else {
		fmt.Println("verdict: NOT schedulable (busy-loop attack tasks make their core unbounded by design)")
	}
}
