// Command experiments regenerates every table and figure of the paper
// from the simulation through the public SDK, printing paper-style
// rows and optionally writing per-figure trajectory CSVs. The
// per-figure flags are thin aliases for scenario-registry names;
// arbitrary registered scenarios and parallel Monte-Carlo campaigns
// run through the same path.
//
//	experiments -all
//	experiments -table1 -table2
//	experiments -fig4 -fig5 -csv-dir results/
//	experiments -list
//	experiments -scenario mission-kill
//	experiments -scenario memdos -runs 32 -parallel 8
//	experiments -scenario udpflood -runs 16 -sweep attack.rate=2000,8000,32000
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"containerdrone"
	"containerdrone/cliutil"
)

// stringList is a repeatable string flag: each occurrence appends.
type stringList []string

func (s *stringList) String() string     { return strings.Join(*s, " ") }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

// figures maps the paper's per-figure flags onto registry scenarios.
var figures = []struct {
	flagName string
	scenario string
	title    string
	help     string
}{
	{"fig4", "memdos-unguarded", "Fig 4: memory DoS, MemGuard OFF — expect crash shortly after 10s",
		"Fig 4: memory DoS without MemGuard"},
	{"fig5", "memdos", "Fig 5: memory DoS, MemGuard ON — expect oscillation but stable",
		"Fig 5: memory DoS with MemGuard"},
	{"fig6", "kill", "Fig 6: complex controller killed at 12s — expect interval-rule failover",
		"Fig 6: complex controller killed"},
	{"fig7", "udpflood", "Fig 7: UDP flood at 8s — expect attitude-rule failover and recovery",
		"Fig 7: UDP DoS attack"},
}

func main() {
	var (
		all    = flag.Bool("all", false, "run everything")
		table1 = flag.Bool("table1", false, "Table I: HCE↔CCE data streams")
		table2 = flag.Bool("table2", false, "Table II: system overhead comparison")
		list   = flag.Bool("list", false, "list registered scenarios and exit")
		csvDir = flag.String("csv-dir", "", "write per-figure trajectory CSVs into this directory")

		faults   = flag.Bool("faults", false, "fault matrix: run every fault scenario (monitored and unmonitored) and tabulate detection/outcome")
		swarm    = flag.Bool("swarm", false, "swarm matrix: run every multi-drone scenario and tabulate per-member detection/outcome")
		scenario = flag.String("scenario", "", "run one registered scenario (see -list)")
		seed     = flag.Uint64("seed", 1, "simulation seed / campaign base seed")
		duration = flag.Duration("duration", 0, "flight length override (default: scenario preset)")
		runs     = flag.Int("runs", 1, "campaign: seeds per point (>1 or -sweep enables campaign mode)")
		parallel = flag.Int("parallel", 0, "campaign: workers (0 = GOMAXPROCS)")
		sweeps   stringList
	)
	figFlags := make([]*bool, len(figures))
	for i, f := range figures {
		figFlags[i] = flag.Bool(f.flagName, false, f.help)
	}
	flag.Var(&sweeps, "sweep", "campaign sweep key=v1,v2,... (repeatable)")
	flag.Parse()

	if *list {
		for _, s := range containerdrone.Scenarios() {
			fmt.Printf("  %-22s %s\n", s.Name, s.Desc)
		}
		return
	}

	// SIGINT/SIGTERM cancel the in-flight simulation; completed rows
	// stay on stdout and the interrupted figure still flushes its
	// partial trajectory before the process exits non-zero.
	ctx, stop := cliutil.SignalContext(context.Background())
	defer stop()
	if *scenario != "" {
		anyTableOrFig := *all || *table1 || *table2
		for i := range figFlags {
			anyTableOrFig = anyTableOrFig || *figFlags[i]
		}
		if anyTableOrFig {
			fatal(fmt.Errorf("-scenario cannot be combined with -all/-table*/-fig* (run them separately)"))
		}
		runScenario(ctx, *scenario, sweeps, *runs, *parallel, *seed, *duration, *csvDir)
		return
	}
	if *all {
		*table1, *table2, *faults, *swarm = true, true, true, true
		for i := range figFlags {
			*figFlags[i] = true
		}
	}
	anyFig := false
	for i := range figFlags {
		anyFig = anyFig || *figFlags[i]
	}
	if !(*table1 || *table2 || anyFig || *faults || *swarm) {
		flag.Usage()
		os.Exit(2)
	}
	if *table1 {
		runTable1(ctx)
	}
	if *table2 {
		runTable2()
	}
	for i, f := range figures {
		if *figFlags[i] {
			runFigure(ctx, f.title, f.flagName, f.scenario, *seed, 0, *csvDir)
		}
	}
	if *faults {
		runFaultMatrix(ctx, *seed)
	}
	if *swarm {
		runSwarmMatrix(ctx, *seed)
	}
}

// runFaultMatrix tabulates every fault scenario the registry carries:
// detection rule and latency with the monitor armed, outcome with and
// without it — the fault-injection extension of the paper's Figs 4–7.
func runFaultMatrix(ctx context.Context, seed uint64) {
	fmt.Println("FAULT MATRIX — fault scenarios beyond the paper's threat model")
	fmt.Printf("  %-14s %-20s %-9s %-22s %s\n",
		"fault", "detected by", "latency", "monitored outcome", "unmonitored outcome")
	// Fault kinds double as the monitored scenario names by
	// construction, so a new kind appears here without a code change.
	for _, kind := range containerdrone.FaultKinds() {
		mon := runQuiet(ctx, kind, seed)
		detected, latency := "-", "-"
		if mon.Switched {
			detected = mon.SwitchRule
			var start float64
			if len(mon.Faults) > 0 {
				start = mon.Faults[0].StartS
			}
			latency = fmt.Sprintf("%.0fms", (mon.SwitchS-start)*1e3)
		}
		unmonitored := "(no unmonitored variant)"
		if scenarioExists(kind + "-unmonitored") {
			unmonitored = outcome(runQuiet(ctx, kind+"-unmonitored", seed))
		}
		fmt.Printf("  %-14s %-20s %-9s %-22s %s\n",
			kind, detected, latency, outcome(mon), unmonitored)
	}
	fmt.Println()
}

// runSwarmMatrix tabulates the multi-drone scenarios: which member an
// attack or fault strikes, which member's monitor catches it, and how
// the rest of the formation fares — the fleet extension of the fault
// matrix. Per-member columns come from Result.Members, so the table
// shows where in the fleet an event landed, not just that it landed.
func runSwarmMatrix(ctx context.Context, seed uint64) {
	fmt.Println("SWARM MATRIX — 3-drone formations on one shared fabric")
	fmt.Printf("  %-30s %-10s %-20s %-9s %s\n",
		"scenario", "detected", "by rule", "latency", "per-member outcome")
	for _, name := range []string{
		"swarm-baseline", "swarm-mission", "fleet-split",
		"swarm-peer-flood", "swarm-cross-replay",
		"swarm-cross-replay-unmonitored", "swarm-compromised",
	} {
		res := runQuiet(ctx, name, seed)
		detected, rule, latency := "-", "-", "-"
		for _, m := range res.Members {
			if !m.Switched {
				continue
			}
			detected, rule = fmt.Sprintf("member %d", m.Member), m.SwitchRule
			var start float64
			if res.Attack.Active() {
				start = res.Attack.StartS
			} else if len(res.Faults) > 0 {
				start = res.Faults[0].StartS
			}
			latency = fmt.Sprintf("%.0fms", (m.SwitchS-start)*1e3)
			break
		}
		var members []string
		for _, m := range res.Members {
			state := "ok"
			switch {
			case m.Crashed:
				state = fmt.Sprintf("CRASH@%.1fs", m.CrashS)
			case m.Switched:
				state = "switched"
			}
			members = append(members, fmt.Sprintf("%d:%s", m.Member, state))
		}
		fmt.Printf("  %-30s %-10s %-20s %-9s %s\n",
			name, detected, rule, latency, strings.Join(members, " "))
	}
	fmt.Println()
}

func scenarioExists(name string) bool {
	for _, s := range containerdrone.Scenarios() {
		if s.Name == name {
			return true
		}
	}
	return false
}

func outcome(r *containerdrone.Result) string {
	if r.Crashed {
		return fmt.Sprintf("CRASH at %.1fs", r.CrashS)
	}
	return fmt.Sprintf("max dev %.2fm", r.Metrics.MaxDeviationM)
}

func runQuiet(ctx context.Context, scenario string, seed uint64) *containerdrone.Result {
	sim, err := containerdrone.New(scenario, containerdrone.WithSeed(seed))
	if err != nil {
		fatal(err)
	}
	// An interrupted matrix row would tabulate misleading numbers, so
	// cancellation exits here; rows already printed stay flushed.
	res, err := sim.Run(ctx)
	if err != nil {
		fatal(err)
	}
	return res
}

// runScenario runs one registered scenario: a single reported flight,
// or a campaign when -runs/-sweep ask for one.
func runScenario(ctx context.Context, name string, sweepSpecs []string, runs, parallel int,
	seed uint64, duration time.Duration, csvDir string) {
	var parsed []containerdrone.Sweep
	for _, s := range sweepSpecs {
		sw, err := containerdrone.ParseSweep(s)
		if err != nil {
			fatal(err)
		}
		parsed = append(parsed, sw)
	}
	if runs > 1 || len(parsed) > 0 {
		if csvDir != "" {
			fatal(fmt.Errorf("-csv-dir writes single-flight trajectories; campaigns aggregate instead (drop -runs/-sweep or -csv-dir)"))
		}
		if runs < 1 {
			runs = 1
		}
		c := containerdrone.NewCampaign(name,
			containerdrone.WithSweeps(parsed...),
			containerdrone.WithRuns(runs),
			containerdrone.WithParallel(parallel),
			containerdrone.WithBaseSeed(seed),
			containerdrone.WithRunDuration(duration),
		)
		res, err := c.Run(ctx)
		if res == nil {
			fatal(err)
		}
		fmt.Print(res.Summary())
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign interrupted: %v — partial aggregates above\n", err)
			os.Exit(1)
		}
		return
	}
	title := name
	for _, s := range containerdrone.Scenarios() {
		if s.Name == name {
			title = s.Desc
		}
	}
	runFigure(ctx, title, name, name, seed, duration, csvDir)
}

func runTable1(ctx context.Context) {
	fmt.Println("TABLE I — data transfer between the control environments (10 s measurement)")
	sim, err := containerdrone.New("baseline", containerdrone.WithDuration(10*time.Second))
	if err != nil {
		fatal(err)
	}
	res, err := sim.Run(ctx)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  %-14s %-10s %8s %8s %6s %10s\n", "Component", "Direction", "Rate", "Size", "Port", "Measured")
	dir := map[string]string{
		"IMU": "HCE→CCE", "Barometer": "HCE→CCE", "GPS": "HCE→CCE",
		"RC": "HCE→CCE", "Motor Output": "CCE→HCE",
	}
	for _, st := range res.Streams {
		rate := float64(st.Packets) / res.DurationS
		fmt.Printf("  %-14s %-10s %6.0fHz %6dB  %5d %7.1f Hz\n",
			st.Name, dir[st.Name], rate, st.FrameSizeB, st.Port, rate)
	}
	fmt.Println()
}

func runTable2() {
	fmt.Println("TABLE II — system overhead comparison (CPU idle rates, 30 s)")
	rows, err := containerdrone.Overhead(30 * time.Second)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  %-24s %6s %6s %6s %6s\n", "Case", "CPU0", "CPU1", "CPU2", "CPU3")
	for _, row := range rows {
		fmt.Printf("  %-24s %6.2f %6.2f %6.2f %6.2f\n", row.Case,
			row.IdleRates[0], row.IdleRates[1], row.IdleRates[2], row.IdleRates[3])
	}
	fmt.Println("  paper:  native 0.95/0.99/0.99/0.99   VM 0.86/0.83/0.81/0.77   container 0.95/0.99/0.99/0.98")
	fmt.Println()
}

func runFigure(ctx context.Context, title, name, scenario string, seed uint64, duration time.Duration, csvDir string) {
	fmt.Println(title)
	opts := []containerdrone.Option{containerdrone.WithSeed(seed)}
	if duration > 0 {
		opts = append(opts, containerdrone.WithDuration(duration))
	}
	sim, err := containerdrone.New(scenario, opts...)
	if err != nil {
		fatal(err)
	}
	res, runErr := sim.Run(ctx)
	if res == nil {
		fatal(runErr)
	}
	fmt.Print(indent(res.Summary()))
	// Per-axis plots in the layout of the paper's figures: estimated
	// position ('*') against the setpoint ('-', '#' where they meet).
	for _, ax := range []containerdrone.Axis{containerdrone.AxisX, containerdrone.AxisY, containerdrone.AxisZ} {
		fmt.Printf("    %s (m):\n", ax)
		fmt.Print(indent(indent(res.Plot(ax, 64, 8))))
	}
	for _, ev := range res.Trace {
		fmt.Println("   ", ev)
	}
	// Per-phase tracking table (the quantitative reading of the plot).
	fmt.Printf("    %-18s %10s %10s\n", "window", "RMS err", "max dev")
	attackStart := res.AttackStart()
	for _, w := range []struct {
		label    string
		from, to time.Duration
	}{
		{"pre-attack", 2 * time.Second, attackStart},
		{"attack→end", attackStart, res.Duration()},
	} {
		if w.to <= w.from {
			continue
		}
		m := res.WindowMetrics(w.from, w.to)
		fmt.Printf("    %-18s %9.3fm %9.3fm\n", w.label, m.RMSErrorM, m.MaxDeviationM)
	}
	// Scheduling outcome of the flight-critical tasks (quantifies the
	// resource-DoS figures: misses and latency inflation).
	fmt.Printf("    %-16s %8s %8s %9s %10s %10s\n",
		"task", "released", "missed", "miss-rate", "avg-lat", "max-lat")
	for _, tr := range res.Tasks {
		if tr.Released == 0 {
			continue
		}
		fmt.Printf("    %-16s %8d %8d %8.1f%% %10v %10v\n",
			tr.Name, tr.Released, tr.Missed, tr.MissRate*100, tr.AvgLatency(), tr.MaxLatency())
	}
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			fatal(err)
		}
		path := filepath.Join(csvDir, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := res.WriteTrajectoryCSV(f); err != nil {
			f.Close()
			fatal(err)
		}
		f.Close()
		fmt.Printf("    trajectory → %s\n", path)
	}
	fmt.Println()
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "interrupted: %v — partial flight flushed (%d samples)\n",
			runErr, len(res.Samples))
		os.Exit(1)
	}
}

func indent(s string) string {
	out := ""
	for _, line := range strings.Split(strings.TrimSuffix(s, "\n"), "\n") {
		out += "  " + line + "\n"
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
