// Command containerdrone runs one ContainerDrone scenario and reports
// the flight outcome: Simplex switches, crash status, tracking
// metrics, per-axis trajectory sparklines, and optionally the full
// trajectory as CSV (the format of the paper's Figs 4–7).
//
// Examples:
//
//	containerdrone -scenario baseline
//	containerdrone -scenario memdos -memguard=false -csv fig4.csv
//	containerdrone -scenario udpflood -duration 30s
//	containerdrone -scenario kill -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"containerdrone/internal/attack"
	"containerdrone/internal/core"
	"containerdrone/internal/telemetry"
)

func main() {
	var (
		scenario = flag.String("scenario", "baseline", "baseline | memdos | udpflood | kill | cpuhog")
		memguard = flag.Bool("memguard", true, "enable MemGuard memory-bandwidth regulation")
		monitorF = flag.Bool("monitor", true, "enable the security monitor (Simplex switching)")
		iptables = flag.Float64("iptables", 8000, "iptables packet rate limit on the motor port (0 = off)")
		duration = flag.Duration("duration", 30*time.Second, "simulated flight duration")
		attackAt = flag.Duration("attack-at", -1, "attack start time (default: scenario preset)")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		csvPath  = flag.String("csv", "", "write trajectory CSV to this path")
		bbPath   = flag.String("blackbox", "", "write binary flight recording to this path")
		replay   = flag.String("replay", "", "analyze an existing blackbox recording instead of flying")
		trace    = flag.Bool("trace", true, "print the event trace")
	)
	flag.Parse()

	if *replay != "" {
		if err := replayBlackbox(*replay); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	cfg, err := buildConfig(*scenario)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg.Seed = *seed
	cfg.Duration = *duration
	cfg.MemGuardEnabled = *memguard
	cfg.MonitorEnabled = *monitorF
	cfg.IPTablesRate = *iptables
	if *attackAt >= 0 {
		cfg.Attack.Start = *attackAt
	}

	sys, err := core.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res := sys.Run()

	fmt.Print(res.Summary())
	fmt.Printf("  X %s\n", res.Log.Sparkline(telemetry.AxisX, 72))
	fmt.Printf("  Y %s\n", res.Log.Sparkline(telemetry.AxisY, 72))
	fmt.Printf("  Z %s\n", res.Log.Sparkline(telemetry.AxisZ, 72))
	if *trace {
		for _, ev := range res.Trace.Events() {
			fmt.Println(" ", ev)
		}
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := res.Log.WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trajectory written to %s (%d samples)\n", *csvPath, res.Log.Len())
	}
	if *bbPath != "" {
		f, err := os.Create(*bbPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := telemetry.WriteBlackbox(f, res.Log); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("blackbox written to %s\n", *bbPath)
	}
	if res.Crashed {
		os.Exit(3)
	}
}

// replayBlackbox loads a recording and re-runs the analysis pipeline.
func replayBlackbox(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	log, err := telemetry.ReadBlackbox(f)
	if err != nil {
		return err
	}
	m := log.Metrics()
	fmt.Printf("blackbox %s: %d samples\n", path, log.Len())
	if crashed, at := log.Crashed(); crashed {
		fmt.Printf("  CRASHED at %.1fs\n", at.Seconds())
	}
	fmt.Printf("  RMS err %.3fm  max dev %.3fm  max tilt %.1f°\n",
		m.RMSError, m.MaxDeviation, m.MaxTilt*180/3.14159265)
	fmt.Printf("  X %s\n", log.Sparkline(telemetry.AxisX, 72))
	fmt.Printf("  Y %s\n", log.Sparkline(telemetry.AxisY, 72))
	fmt.Printf("  Z %s\n", log.Sparkline(telemetry.AxisZ, 72))
	return nil
}

func buildConfig(scenario string) (core.Config, error) {
	switch scenario {
	case "baseline":
		return core.ScenarioBaseline(), nil
	case "memdos":
		return core.ScenarioMemDoS(true), nil
	case "udpflood":
		return core.ScenarioFlood(), nil
	case "kill":
		return core.ScenarioKill(), nil
	case "cpuhog":
		cfg := core.DefaultConfig()
		cfg.Attack = attack.Plan{Kind: attack.KindCPUHog, Start: 10 * time.Second}
		return cfg, nil
	default:
		return core.Config{}, fmt.Errorf("unknown scenario %q (want baseline|memdos|udpflood|kill|cpuhog)", scenario)
	}
}
