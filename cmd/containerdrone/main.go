// Command containerdrone runs ContainerDrone scenarios through the
// public SDK: one flight with full reporting, or a parallel
// Monte-Carlo campaign of N seeds × a parameter sweep grid.
//
// Single flights report the outcome the paper's Figs 4–7 read off a
// trajectory: Simplex switches, crash status, tracking metrics,
// per-axis sparklines, and optionally the trajectory CSV or a binary
// blackbox recording.
//
// Examples:
//
//	containerdrone -scenario list
//	containerdrone -scenario baseline
//	containerdrone -scenario memdos -set memguard.enabled=0 -csv fig4.csv
//	containerdrone -scenario udpflood -duration 30s
//	containerdrone -scenario kill -seed 7
//	containerdrone -scenario memdos -runs 32 -parallel 8
//	containerdrone -scenario udpflood -runs 16 -sweep attack.rate=2000,8000,32000 -agg-csv flood.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"containerdrone"
	"containerdrone/cliutil"
)

// stringList is a repeatable string flag: each occurrence appends.
type stringList []string

func (s *stringList) String() string     { return strings.Join(*s, " ") }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	var (
		scenario = flag.String("scenario", "baseline", "registered scenario name, or 'list' to enumerate")
		seed     = flag.Uint64("seed", 1, "simulation seed (campaigns derive per-run seeds from it)")
		duration = flag.Duration("duration", 0, "simulated flight length (default: scenario preset)")
		sets     stringList
		sweeps   stringList

		// Campaign mode.
		runs     = flag.Int("runs", 1, "seeds per sweep point; >1 (or any -sweep) switches to campaign mode")
		parallel = flag.Int("parallel", 0, "campaign workers (0 = GOMAXPROCS)")
		cold     = flag.Bool("coldstart", false, "campaign: rebuild every run instead of reusing warm engines")
		fork     = flag.Bool("fork", true, "campaign: share pre-onset prefixes across sweep variants via checkpoint forking")
		recCSV   = flag.String("records-csv", "", "campaign: per-run records CSV, streamed live then finalized in run order")
		aggCSV   = flag.String("agg-csv", "", "campaign: write per-point aggregate CSV to this path")
		jsonPath = flag.String("json", "", "campaign: write full report JSON to this path")

		// Legacy single-run conveniences (aliases for -set keys).
		memguard = flag.Bool("memguard", true, "alias for -set memguard.enabled=0/1")
		monitorF = flag.Bool("monitor", true, "alias for -set monitor.enabled=0/1")
		iptables = flag.Float64("iptables", 8000, "alias for -set iptables.rate=N (0 = off)")
		attackAt = flag.Duration("attack-at", -1, "alias for -set attack.start=N")

		csvPath = flag.String("csv", "", "single run: write trajectory CSV to this path")
		bbPath  = flag.String("blackbox", "", "single run: write binary flight recording to this path")
		replay  = flag.String("replay", "", "analyze an existing blackbox recording instead of flying")
		trace   = flag.Bool("trace", true, "single run: print the event trace")
	)
	flag.Var(&sets, "set", "parameter override key=value (repeatable; see -scenario list for keys)")
	flag.Var(&sweeps, "sweep", "campaign sweep key=v1,v2,... (repeatable; cartesian across flags)")
	flag.Parse()

	if *replay != "" {
		if err := replayBlackbox(*replay); err != nil {
			fatal(err)
		}
		return
	}
	if *scenario == "list" {
		listScenarios()
		return
	}

	// SIGINT/SIGTERM cancel the simulation context: the partial result
	// still flows back, so summaries and output files flush instead of
	// being lost. A second signal kills immediately.
	ctx, stop := cliutil.SignalContext(context.Background())
	defer stop()

	// Fold the legacy aliases into the params map, but only when the
	// flag was given: scenario presets win otherwise.
	params := make(map[string]float64)
	for _, kv := range sets {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			fatal(fmt.Errorf("bad -set %q (want key=value)", kv))
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			fatal(fmt.Errorf("bad -set value %q: %v", kv, err))
		}
		params[strings.TrimSpace(key)] = v
	}
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "memguard":
			params["memguard.enabled"] = b2f(*memguard)
		case "monitor":
			params["monitor.enabled"] = b2f(*monitorF)
		case "iptables":
			params["iptables.rate"] = *iptables
		case "attack-at":
			params["attack.start"] = attackAt.Seconds()
		}
	})

	var parsed []containerdrone.Sweep
	for _, s := range sweeps {
		sw, err := containerdrone.ParseSweep(s)
		if err != nil {
			fatal(err)
		}
		parsed = append(parsed, sw)
	}

	if *runs > 1 || len(parsed) > 0 {
		// Fail loudly on single-run-only flags instead of silently
		// producing no file.
		if *csvPath != "" || *bbPath != "" {
			fatal(fmt.Errorf("-csv and -blackbox are single-run flags; campaigns emit -records-csv/-agg-csv/-json"))
		}
		runCampaign(ctx, *scenario, params, parsed, *runs, *parallel, *seed, *duration,
			*cold, *fork, *recCSV, *aggCSV, *jsonPath)
		return
	}
	runSingle(ctx, *scenario, params, *seed, *duration, *csvPath, *bbPath, *trace)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func listScenarios() {
	fmt.Println("registered scenarios:")
	for _, s := range containerdrone.Scenarios() {
		fmt.Printf("  %-22s %s\n", s.Name, s.Desc)
	}
	fmt.Println("\nsweep/set parameter keys:")
	for _, p := range containerdrone.ParamInfos() {
		fmt.Printf("  %-22s %s\n", p.Key, p.Desc)
	}
}

func runCampaign(ctx context.Context, scenario string, params map[string]float64, sweeps []containerdrone.Sweep,
	runs, parallel int, seed uint64, duration time.Duration,
	coldStart, fork bool, recCSV, aggCSV, jsonPath string) {
	if runs < 1 {
		runs = 1
	}
	opts := []containerdrone.CampaignOption{
		containerdrone.WithBaseParams(params),
		containerdrone.WithSweeps(sweeps...),
		containerdrone.WithRuns(runs),
		containerdrone.WithParallel(parallel),
		containerdrone.WithBaseSeed(seed),
		containerdrone.WithRunDuration(duration),
		containerdrone.WithPrefixSharing(fork),
	}
	if coldStart {
		opts = append(opts, containerdrone.WithColdStart())
	}
	// Records stream to disk as runs complete, off the workers' hot
	// path, so long campaigns are observable with tail -f.
	var recDone func() error
	if recCSV != "" {
		f, err := os.Create(recCSV)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		stream, done, err := containerdrone.StreamRecordsCSV(f)
		if err != nil {
			fatal(err)
		}
		recDone = done
		opts = append(opts, containerdrone.WithRecordObserver(stream))
		fmt.Printf("streaming records to %s\n", recCSV)
	}
	c := containerdrone.NewCampaign(scenario, opts...)
	res, runErr := c.Run(ctx)
	if res == nil {
		fatal(runErr)
	}
	if recDone != nil {
		if err := recDone(); err != nil && runErr == nil {
			fatal(fmt.Errorf("records CSV %s is incomplete: %w", recCSV, err))
		}
		// Streamed rows already arrive in index order (the emitter
		// re-sequences fork and worker completions), so the file is
		// byte-identical to WriteRecordsCSV; the rewrite stands as a
		// cheap guard against a stream interrupted mid-row — and, on an
		// interrupted campaign, replaces the truncated stream with the
		// partial result's consistent view.
		writeOut(recCSV, res.WriteRecordsCSV)
	}
	fmt.Print(res.Summary())
	writeOut(aggCSV, res.WriteAggregatesCSV)
	writeOut(jsonPath, res.WriteJSON)
	if runErr != nil {
		done := 0
		for _, r := range res.Records {
			if r.Err == "" {
				done++
			}
		}
		fmt.Fprintf(os.Stderr, "campaign interrupted: %v — flushed partial results (%d/%d runs completed)\n",
			runErr, done, len(res.Records))
		os.Exit(1)
	}
}

func writeOut(path string, write func(io.Writer) error) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := write(f); err != nil {
		f.Close()
		fatal(err)
	}
	// Close errors carry the last buffered write; ignoring them can
	// report success on a truncated file.
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

func runSingle(ctx context.Context, scenario string, params map[string]float64, seed uint64,
	duration time.Duration, csvPath, bbPath string, trace bool) {
	opts := []containerdrone.Option{containerdrone.WithSeed(seed), containerdrone.WithParams(params)}
	if duration > 0 {
		opts = append(opts, containerdrone.WithDuration(duration))
	}
	sim, err := containerdrone.New(scenario, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	res, runErr := sim.Run(ctx)
	if res == nil {
		fatal(runErr)
	}

	fmt.Print(res.Summary())
	printSparklines(res, 72)
	if trace {
		for _, ev := range res.Trace {
			fmt.Println(" ", ev)
		}
	}
	if csvPath != "" {
		writeOut(csvPath, res.WriteTrajectoryCSV)
		fmt.Printf("trajectory: %d samples\n", len(res.Samples))
	}
	if bbPath != "" {
		writeOut(bbPath, res.WriteBlackbox)
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "flight interrupted: %v — partial trajectory flushed (%d samples)\n",
			runErr, len(res.Samples))
		os.Exit(1)
	}
	if res.Crashed {
		os.Exit(3)
	}
}

func printSparklines(res *containerdrone.Result, width int) {
	for _, ax := range []containerdrone.Axis{containerdrone.AxisX, containerdrone.AxisY, containerdrone.AxisZ} {
		fmt.Printf("  %s %s\n", ax, res.Sparkline(ax, width))
	}
}

// replayBlackbox loads a recording and re-runs the analysis pipeline.
func replayBlackbox(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	res, err := containerdrone.ReadBlackbox(f)
	if err != nil {
		return err
	}
	fmt.Printf("blackbox %s: %d samples\n", path, len(res.Samples))
	if res.Crashed {
		fmt.Printf("  CRASHED at %.1fs\n", res.CrashS)
	}
	fmt.Printf("  RMS err %.3fm  max dev %.3fm  max tilt %.1f°\n",
		res.Metrics.RMSErrorM, res.Metrics.MaxDeviationM, res.Metrics.MaxTiltDeg())
	printSparklines(res, 72)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
