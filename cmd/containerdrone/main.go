// Command containerdrone runs ContainerDrone scenarios from the
// scenario registry: one flight with full reporting, or a parallel
// Monte-Carlo campaign of N seeds × a parameter sweep grid.
//
// Single flights report the outcome the paper's Figs 4–7 read off a
// trajectory: Simplex switches, crash status, tracking metrics,
// per-axis sparklines, and optionally the trajectory CSV or a binary
// blackbox recording.
//
// Examples:
//
//	containerdrone -scenario list
//	containerdrone -scenario baseline
//	containerdrone -scenario memdos -set memguard.enabled=0 -csv fig4.csv
//	containerdrone -scenario udpflood -duration 30s
//	containerdrone -scenario kill -seed 7
//	containerdrone -scenario memdos -runs 32 -parallel 8
//	containerdrone -scenario udpflood -runs 16 -sweep attack.rate=2000,8000,32000 -agg-csv flood.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"containerdrone/internal/campaign"
	"containerdrone/internal/core"
	"containerdrone/internal/telemetry"
)

func main() {
	var (
		scenario = flag.String("scenario", "baseline", "registered scenario name, or 'list' to enumerate")
		seed     = flag.Uint64("seed", 1, "simulation seed (campaigns derive per-run seeds from it)")
		duration = flag.Duration("duration", 0, "simulated flight length (default: scenario preset)")
		sets     campaign.StringList
		sweeps   campaign.StringList

		// Campaign mode.
		runs     = flag.Int("runs", 1, "seeds per sweep point; >1 (or any -sweep) switches to campaign mode")
		parallel = flag.Int("parallel", 0, "campaign workers (0 = NumCPU)")
		recCSV   = flag.String("records-csv", "", "campaign: write per-run records CSV to this path")
		aggCSV   = flag.String("agg-csv", "", "campaign: write per-point aggregate CSV to this path")
		jsonPath = flag.String("json", "", "campaign: write full report JSON to this path")

		// Legacy single-run conveniences (aliases for -set keys).
		memguard = flag.Bool("memguard", true, "alias for -set memguard.enabled=0/1")
		monitorF = flag.Bool("monitor", true, "alias for -set monitor.enabled=0/1")
		iptables = flag.Float64("iptables", 8000, "alias for -set iptables.rate=N (0 = off)")
		attackAt = flag.Duration("attack-at", -1, "alias for -set attack.start=N")

		csvPath = flag.String("csv", "", "single run: write trajectory CSV to this path")
		bbPath  = flag.String("blackbox", "", "single run: write binary flight recording to this path")
		replay  = flag.String("replay", "", "analyze an existing blackbox recording instead of flying")
		trace   = flag.Bool("trace", true, "single run: print the event trace")
	)
	flag.Var(&sets, "set", "parameter override key=value (repeatable; see -scenario list for keys)")
	flag.Var(&sweeps, "sweep", "campaign sweep key=v1,v2,... (repeatable; cartesian across flags)")
	flag.Parse()

	if *replay != "" {
		if err := replayBlackbox(*replay); err != nil {
			fatal(err)
		}
		return
	}
	if *scenario == "list" {
		listScenarios()
		return
	}

	// Fold the legacy aliases into the params map, but only when the
	// flag was given: scenario presets win otherwise.
	params := make(map[string]float64)
	for _, kv := range sets {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			fatal(fmt.Errorf("bad -set %q (want key=value)", kv))
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			fatal(fmt.Errorf("bad -set value %q: %v", kv, err))
		}
		params[strings.TrimSpace(key)] = v
	}
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "memguard":
			params["memguard.enabled"] = b2f(*memguard)
		case "monitor":
			params["monitor.enabled"] = b2f(*monitorF)
		case "iptables":
			params["iptables.rate"] = *iptables
		case "attack-at":
			params["attack.start"] = attackAt.Seconds()
		}
	})

	parsed, err := campaign.ParseSweeps(sweeps)
	if err != nil {
		fatal(err)
	}

	if *runs > 1 || len(parsed) > 0 {
		// Fail loudly on single-run-only flags instead of silently
		// producing no file.
		if *csvPath != "" || *bbPath != "" {
			fatal(fmt.Errorf("-csv and -blackbox are single-run flags; campaigns emit -records-csv/-agg-csv/-json"))
		}
		runCampaign(*scenario, params, parsed, *runs, *parallel, *seed, *duration,
			*recCSV, *aggCSV, *jsonPath)
		return
	}
	runSingle(*scenario, params, *seed, *duration, *csvPath, *bbPath, *trace)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func listScenarios() {
	fmt.Println("registered scenarios:")
	for _, s := range core.Scenarios() {
		fmt.Printf("  %-22s %s\n", s.Name, s.Desc)
	}
	fmt.Println("\nsweep/set parameter keys:")
	for _, k := range core.ParamKeys() {
		fmt.Printf("  %-22s %s\n", k, core.ParamDesc(k))
	}
}

func runCampaign(scenario string, params map[string]float64, sweeps []campaign.Sweep,
	runs, parallel int, seed uint64, duration time.Duration,
	recCSV, aggCSV, jsonPath string) {
	if runs < 1 {
		runs = 1
	}
	spec := campaign.Spec{
		Points:   campaign.Expand(scenario, params, sweeps),
		Runs:     runs,
		Parallel: parallel,
		BaseSeed: seed,
		Duration: duration,
	}
	records, err := campaign.Run(spec)
	if err != nil {
		fatal(err)
	}
	aggs := campaign.AggregateRecords(records)
	campaign.PrintSummary(os.Stdout, spec, aggs)
	writeOut(recCSV, func(f *os.File) error { return campaign.WriteRecordsCSV(f, records) })
	writeOut(aggCSV, func(f *os.File) error { return campaign.WriteAggregatesCSV(f, aggs) })
	writeOut(jsonPath, func(f *os.File) error { return campaign.WriteJSON(f, records, aggs) })
}

func writeOut(path string, write func(*os.File) error) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := write(f); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

func runSingle(scenario string, params map[string]float64, seed uint64,
	duration time.Duration, csvPath, bbPath string, trace bool) {
	cfg, err := core.Build(scenario, core.Options{
		Seed: seed, Duration: duration, Params: params,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sys, err := core.New(cfg)
	if err != nil {
		fatal(err)
	}
	res := sys.Run()

	fmt.Print(res.Summary())
	fmt.Printf("  X %s\n", res.Log.Sparkline(telemetry.AxisX, 72))
	fmt.Printf("  Y %s\n", res.Log.Sparkline(telemetry.AxisY, 72))
	fmt.Printf("  Z %s\n", res.Log.Sparkline(telemetry.AxisZ, 72))
	if trace {
		for _, ev := range res.Trace.Events() {
			fmt.Println(" ", ev)
		}
	}
	if csvPath != "" {
		writeOut(csvPath, func(f *os.File) error { return res.Log.WriteCSV(f) })
		fmt.Printf("trajectory: %d samples\n", res.Log.Len())
	}
	if bbPath != "" {
		writeOut(bbPath, func(f *os.File) error { return telemetry.WriteBlackbox(f, res.Log) })
	}
	if res.Crashed {
		os.Exit(3)
	}
}

// replayBlackbox loads a recording and re-runs the analysis pipeline.
func replayBlackbox(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	log, err := telemetry.ReadBlackbox(f)
	if err != nil {
		return err
	}
	m := log.Metrics()
	fmt.Printf("blackbox %s: %d samples\n", path, log.Len())
	if crashed, at := log.Crashed(); crashed {
		fmt.Printf("  CRASHED at %.1fs\n", at.Seconds())
	}
	fmt.Printf("  RMS err %.3fm  max dev %.3fm  max tilt %.1f°\n",
		m.RMSError, m.MaxDeviation, m.MaxTilt*180/3.14159265)
	fmt.Printf("  X %s\n", log.Sparkline(telemetry.AxisX, 72))
	fmt.Printf("  Y %s\n", log.Sparkline(telemetry.AxisY, 72))
	fmt.Printf("  Z %s\n", log.Sparkline(telemetry.AxisZ, 72))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
