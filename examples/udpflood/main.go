// Udpflood reproduces the paper's communication DoS experiment
// (Fig 7): at t=8 s the attacker floods the HCE's motor-output port
// with junk datagrams from inside the container. The legitimate
// 400 Hz motor stream drowns in the queue, the control loop
// destabilizes, the attitude-error rule fires, the monitor kills the
// receiving thread and hands control to the safety controller, which
// recovers the vehicle.
//
// The example also runs the ablation the framework's iptables rate
// limit is for: sweeping the limit shows how damage shrinks as the
// flood is clamped closer to the legitimate traffic rate.
package main

import (
	"context"
	"fmt"
	"log"

	"containerdrone"
)

func main() {
	sim, err := containerdrone.New("udpflood")
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("UDP flood against the HCE motor port (20k pkt/s from t=8s)")
	fmt.Print(res.Summary())
	for _, ax := range []containerdrone.Axis{containerdrone.AxisX, containerdrone.AxisY, containerdrone.AxisZ} {
		fmt.Printf("  %s %s\n", ax, res.Sparkline(ax, 60))
	}
	for _, ev := range res.Trace {
		fmt.Println(" ", ev)
	}
	fmt.Printf("  garbage datagrams seen by receiver: %d\n\n", res.GarbagePkts)

	fmt.Println("iptables rate-limit ablation (attack window max deviation):")
	for _, rate := range []float64{0, 2000, 4000, 8000, 16000} {
		s, err := containerdrone.New("udpflood",
			containerdrone.WithParam("iptables.rate", rate))
		if err != nil {
			log.Fatal(err)
		}
		r, err := s.Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		outcome := fmt.Sprintf("max dev %.3fm", r.AttackMetrics.MaxDeviationM)
		if r.Crashed {
			outcome = fmt.Sprintf("CRASH at %.1fs", r.CrashS)
		}
		limit := "unlimited"
		if rate > 0 {
			limit = fmt.Sprintf("%6.0f pps", rate)
		}
		switched := ""
		if r.Switched {
			switched = fmt.Sprintf("  (switched at %.2fs: %s)", r.SwitchS, r.SwitchRule)
		}
		fmt.Printf("  limit %-10s → %s%s\n", limit, outcome, switched)
	}
}
