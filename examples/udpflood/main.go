// Udpflood reproduces the paper's communication DoS experiment
// (Fig 7): at t=8 s the attacker floods the HCE's motor-output port
// with junk datagrams from inside the container. The legitimate
// 400 Hz motor stream drowns in the queue, the control loop
// destabilizes, the attitude-error rule fires, the monitor kills the
// receiving thread and hands control to the safety controller, which
// recovers the vehicle.
//
// The example also runs the ablation the framework's iptables rate
// limit is for: sweeping the limit shows how damage shrinks as the
// flood is clamped closer to the legitimate traffic rate.
package main

import (
	"fmt"
	"log"

	"containerdrone/internal/core"
	"containerdrone/internal/telemetry"
)

func main() {
	cfg := core.ScenarioFlood()
	sys, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res := sys.Run()

	fmt.Println("UDP flood against the HCE motor port (20k pkt/s from t=8s)")
	fmt.Print(res.Summary())
	fmt.Printf("  X %s\n", res.Log.Sparkline(telemetry.AxisX, 60))
	fmt.Printf("  Y %s\n", res.Log.Sparkline(telemetry.AxisY, 60))
	fmt.Printf("  Z %s\n", res.Log.Sparkline(telemetry.AxisZ, 60))
	for _, ev := range res.Trace.Events() {
		fmt.Println(" ", ev)
	}
	fmt.Printf("  garbage datagrams seen by receiver: %d\n\n", res.GarbagePkts)

	fmt.Println("iptables rate-limit ablation (attack window max deviation):")
	for _, rate := range []float64{0, 2000, 4000, 8000, 16000} {
		c := core.ScenarioFlood()
		c.IPTablesRate = rate
		s, err := core.New(c)
		if err != nil {
			log.Fatal(err)
		}
		r := s.Run()
		outcome := fmt.Sprintf("max dev %.3fm", r.AttackMetrics.MaxDeviation)
		if r.Crashed {
			outcome = fmt.Sprintf("CRASH at %.1fs", r.CrashTime.Seconds())
		}
		limit := "unlimited"
		if rate > 0 {
			limit = fmt.Sprintf("%6.0f pps", rate)
		}
		switched := ""
		if r.Switched {
			switched = fmt.Sprintf("  (switched at %.2fs: %s)", r.SwitchTime.Seconds(), r.SwitchRule)
		}
		fmt.Printf("  limit %-10s → %s%s\n", limit, outcome, switched)
	}
}
