// Mission exercises the complex controller's "advanced features"
// (§III-A: mission planning) under the full ContainerDrone stack: a
// square patrol at 1–1.5 m altitude, flown by the containerized
// controller while the safety controller shadows the vehicle as a
// position-hold fallback.
//
// It then repeats the mission with a mid-flight controller kill,
// demonstrating how Simplex semantics interact with missions: the
// safety controller freezes and holds where the vehicle was — it does
// not fly the rest of the mission, because only the (now dead)
// complex controller knows it.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"containerdrone"
)

// missionOpts builds the custom patrol on top of the baseline
// scenario. Mission legs tilt well past the hover envelope, so the
// attitude rule is loosened accordingly (see EXPERIMENTS.md on this
// trade-off; the 25 is degrees).
func missionOpts() []containerdrone.Option {
	return []containerdrone.Option{
		containerdrone.WithDuration(40 * time.Second),
		containerdrone.WithParam("monitor.max-attitude", 25),
		containerdrone.WithMission(
			containerdrone.Waypoint{Pos: containerdrone.Vec3{X: 1, Z: 1}, HoldS: 1},
			containerdrone.Waypoint{Pos: containerdrone.Vec3{X: 1, Y: 1, Z: 1.5}, HoldS: 1},
			containerdrone.Waypoint{Pos: containerdrone.Vec3{Y: 1, Z: 1}, HoldS: 1},
			containerdrone.Waypoint{Pos: containerdrone.Vec3{Z: 1}, HoldS: 1},
		),
	}
}

func fly(opts ...containerdrone.Option) *containerdrone.Result {
	sim, err := containerdrone.New("baseline", opts...)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func sparklines(res *containerdrone.Result) {
	for _, ax := range []containerdrone.Axis{containerdrone.AxisX, containerdrone.AxisY, containerdrone.AxisZ} {
		fmt.Printf("  %s %s\n", ax, res.Sparkline(ax, 60))
	}
}

func main() {
	fmt.Println("Square patrol mission (4 waypoints, 40 s)")
	res := fly(missionOpts()...)
	fmt.Printf("  mission complete: %v   crashed: %v   switched: %v\n",
		res.MissionComplete, res.Crashed, res.Switched)
	sparklines(res)

	fmt.Println("\nSame mission, complex controller killed at t=6s")
	res = fly(append(missionOpts(),
		containerdrone.WithAttack(containerdrone.Attack{Kind: "kill-controller", StartS: 6}))...)
	fmt.Printf("  mission complete: %v   crashed: %v\n", res.MissionComplete, res.Crashed)
	if res.Switched {
		fmt.Printf("  Simplex switch at %.2fs (%s) — safety controller holds position\n",
			res.SwitchS, res.SwitchRule)
	}
	sparklines(res)
	for _, ev := range res.Trace {
		fmt.Println(" ", ev)
	}
}
