// Mission exercises the complex controller's "advanced features"
// (§III-A: mission planning) under the full ContainerDrone stack: a
// square patrol at 1–1.5 m altitude, flown by the containerized
// controller while the safety controller shadows the vehicle as a
// position-hold fallback.
//
// It then repeats the mission with a mid-flight controller kill,
// demonstrating how Simplex semantics interact with missions: the
// safety controller freezes and holds where the vehicle was — it does
// not fly the rest of the mission, because only the (now dead)
// complex controller knows it.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"containerdrone/internal/attack"
	"containerdrone/internal/control"
	"containerdrone/internal/core"
	"containerdrone/internal/physics"
	"containerdrone/internal/telemetry"
)

func missionConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Duration = 40 * time.Second
	// Mission legs tilt well past the hover envelope; loosen the
	// attitude rule accordingly (see EXPERIMENTS.md on this trade-off).
	cfg.Rules.MaxAttitudeError = 25 * math.Pi / 180
	cfg.Mission = []control.Waypoint{
		{Pos: physics.Vec3{X: 1, Z: 1}, Hold: time.Second},
		{Pos: physics.Vec3{X: 1, Y: 1, Z: 1.5}, Hold: time.Second},
		{Pos: physics.Vec3{Y: 1, Z: 1}, Hold: time.Second},
		{Pos: physics.Vec3{Z: 1}, Hold: time.Second},
	}
	return cfg
}

func fly(cfg core.Config) *core.Result {
	sys, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return sys.Run()
}

func main() {
	fmt.Println("Square patrol mission (4 waypoints, 40 s)")
	res := fly(missionConfig())
	fmt.Printf("  mission complete: %v   crashed: %v   switched: %v\n",
		res.MissionComplete, res.Crashed, res.Switched)
	fmt.Printf("  X %s\n", res.Log.Sparkline(telemetry.AxisX, 60))
	fmt.Printf("  Y %s\n", res.Log.Sparkline(telemetry.AxisY, 60))
	fmt.Printf("  Z %s\n", res.Log.Sparkline(telemetry.AxisZ, 60))

	fmt.Println("\nSame mission, complex controller killed at t=6s")
	cfg := missionConfig()
	cfg.Attack = attack.Plan{Kind: attack.KindKill, Start: 6 * time.Second}
	res = fly(cfg)
	fmt.Printf("  mission complete: %v   crashed: %v\n", res.MissionComplete, res.Crashed)
	if res.Switched {
		fmt.Printf("  Simplex switch at %.2fs (%s) — safety controller holds position\n",
			res.SwitchTime.Seconds(), res.SwitchRule)
	}
	fmt.Printf("  X %s\n", res.Log.Sparkline(telemetry.AxisX, 60))
	fmt.Printf("  Y %s\n", res.Log.Sparkline(telemetry.AxisY, 60))
	fmt.Printf("  Z %s\n", res.Log.Sparkline(telemetry.AxisZ, 60))
	for _, ev := range res.Trace.Events() {
		fmt.Println(" ", ev)
	}
}
