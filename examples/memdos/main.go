// Memdos reproduces the paper's memory-bandwidth DoS experiment pair
// (Figs 4 and 5): the IsolBench-style Bandwidth task launches inside
// the container at t=10 s. Without MemGuard the shared-DRAM
// interference collapses the host control pipeline and the drone
// crashes; with MemGuard the attacker core is throttled and the drone
// merely oscillates.
package main

import (
	"context"
	"fmt"
	"log"

	"containerdrone"
)

func main() {
	fmt.Println("Memory-bandwidth DoS (Bandwidth attack at t=10s)")
	for _, c := range []struct {
		scenario string
		label    string
	}{
		{"memdos-unguarded", "MemGuard OFF (Fig 4)"},
		{"memdos", "MemGuard ON  (Fig 5)"},
	} {
		sim, err := containerdrone.New(c.scenario)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("\n== %s ==\n", c.label)
		if res.Crashed {
			fmt.Printf("  CRASHED at %.1fs — attack launched at %.0fs\n",
				res.CrashS, res.Attack.StartS)
		} else {
			post := res.WindowMetrics(res.AttackStart(), res.Duration())
			fmt.Printf("  survived; attack-window RMS %.3fm, max deviation %.3fm\n",
				post.RMSErrorM, post.MaxDeviationM)
		}
		for _, ax := range []containerdrone.Axis{containerdrone.AxisX, containerdrone.AxisY, containerdrone.AxisZ} {
			fmt.Printf("  %s %s\n", ax, res.Sparkline(ax, 60))
		}
	}
}
