// Memdos reproduces the paper's memory-bandwidth DoS experiment pair
// (Figs 4 and 5): the IsolBench-style Bandwidth task launches inside
// the container at t=10 s. Without MemGuard the shared-DRAM
// interference collapses the host control pipeline and the drone
// crashes; with MemGuard the attacker core is throttled and the drone
// merely oscillates.
package main

import (
	"fmt"
	"log"

	"containerdrone/internal/core"
	"containerdrone/internal/telemetry"
)

func main() {
	fmt.Println("Memory-bandwidth DoS (Bandwidth attack at t=10s)")
	for _, c := range []struct {
		scenario string
		label    string
	}{
		{"memdos-unguarded", "MemGuard OFF (Fig 4)"},
		{"memdos", "MemGuard ON  (Fig 5)"},
	} {
		cfg := core.MustBuild(c.scenario, core.Options{})
		sys, err := core.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res := sys.Run()

		label := c.label
		fmt.Printf("\n== %s ==\n", label)
		if res.Crashed {
			fmt.Printf("  CRASHED at %.1fs — attack launched at %.0fs\n",
				res.CrashTime.Seconds(), cfg.Attack.Start.Seconds())
		} else {
			post := res.Log.WindowMetrics(cfg.Attack.Start, cfg.Duration)
			fmt.Printf("  survived; attack-window RMS %.3fm, max deviation %.3fm\n",
				post.RMSError, post.MaxDeviation)
		}
		fmt.Printf("  X %s\n", res.Log.Sparkline(telemetry.AxisX, 60))
		fmt.Printf("  Y %s\n", res.Log.Sparkline(telemetry.AxisY, 60))
		fmt.Printf("  Z %s\n", res.Log.Sparkline(telemetry.AxisZ, 60))
	}
}
