// Faults is the SDK walk-through for the fault-injection subsystem:
// a defended-vs-undefended comparison of one preset fault scenario,
// then composing faults onto any scenario with WithFault — a GPS
// spoof layered over a link-jitter window on the baseline flight —
// the API the preset fault scenarios are built from. The full fault
// matrix (every kind, detection rule, latency) is the experiment
// driver's job: `go run ./cmd/experiments -faults`.
package main

import (
	"context"
	"fmt"
	"log"

	"containerdrone"
)

func main() {
	fmt.Println("defended vs undefended (mav-replay):")
	for _, name := range []string{"mav-replay", "mav-replay-unmonitored"} {
		r := run(name)
		fmt.Printf("  %-24s %s", name, r.Summary())
	}

	fmt.Println("composed faults via WithFault (GPS spoof + jitter on baseline):")
	sim, err := containerdrone.New("baseline",
		containerdrone.WithFault(containerdrone.Fault{Kind: "gps-spoof", StartS: 10, Rate: 0.5}),
		containerdrone.WithFault(containerdrone.Fault{Kind: "jitter", StartS: 12, DurationS: 6}),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Summary())
	for _, ax := range []containerdrone.Axis{containerdrone.AxisX, containerdrone.AxisZ} {
		fmt.Printf("  %s %s\n", ax, res.Sparkline(ax, 60))
	}
	for _, ev := range res.Trace {
		fmt.Println(" ", ev)
	}
}

func run(scenario string) *containerdrone.Result {
	sim, err := containerdrone.New(scenario)
	if err != nil {
		log.Fatal(err)
	}
	r, err := sim.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	return r
}
