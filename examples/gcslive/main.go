// Gcslive demonstrates the ground-control-station link: it flies the
// UDP-flood scenario, then streams the recorded trajectory over a
// real loopback UDP socket as MAVLink telemetry frames, with an
// in-process station consuming and summarizing them — the "networked
// robot" integration the paper's system context assumes.
package main

import (
	"fmt"
	"log"
	"time"

	"containerdrone/internal/core"
	"containerdrone/internal/gcs"
)

func main() {
	sys, err := core.New(core.ScenarioFlood())
	if err != nil {
		log.Fatal(err)
	}
	res := sys.Run()
	fmt.Printf("flight done: crashed=%v switched=%v samples=%d\n",
		res.Crashed, res.Switched, res.Log.Len())

	link, err := gcs.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatalf("loopback UDP unavailable: %v", err)
	}
	defer link.Close()
	station, err := gcs.Dial(link.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer station.Close()

	// The station announces itself with a setpoint; the link locks on.
	if err := station.SendSetpoint(gcs.Setpoint{}); err != nil {
		log.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)

	// Stream every 10th sample (5 Hz equivalent of the 50 Hz log).
	sent, received := 0, 0
	crashSeen := false
	samples := res.Log.Samples()
	for i := 0; i < len(samples); i += 10 {
		s := samples[i]
		crashed, at := res.Log.Crashed()
		t := gcs.Telemetry{
			TimeUS: uint64(s.Time / time.Microsecond),
			Pos:    s.Position,
			Roll:   s.Roll, Pitch: s.Pitch, Yaw: s.Yaw,
			Crashed: crashed && s.Time >= at,
		}
		if err := link.SendTelemetry(t); err != nil {
			log.Fatal(err)
		}
		sent++
		recv, err := station.RecvTelemetry(time.Second)
		if err != nil {
			log.Fatalf("telemetry lost after %d frames: %v", received, err)
		}
		received++
		if recv.Crashed {
			crashSeen = true
		}
	}
	fmt.Printf("streamed %d telemetry frames over UDP, station received %d\n", sent, received)
	fmt.Printf("station observed crash flag: %v\n", crashSeen)
	last := samples[len(samples)-1]
	fmt.Printf("final downlinked position: (%.2f, %.2f, %.2f)\n",
		last.Position.X, last.Position.Y, last.Position.Z)
}
