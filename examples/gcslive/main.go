// Gcslive demonstrates live run observation over the ground-control-
// station link: it flies the UDP-flood scenario with an Observer
// attached and downlinks the trajectory over a real loopback UDP
// socket as MAVLink telemetry frames while the simulation runs, with
// an in-process station consuming and summarizing them — the
// "networked robot" integration the paper's system context assumes,
// and the pattern any live dashboard would use.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"containerdrone"
	"containerdrone/gcs"
)

func main() {
	link, err := gcs.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatalf("loopback UDP unavailable: %v", err)
	}
	defer link.Close()
	station, err := gcs.Dial(link.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer station.Close()

	// The station announces itself with a setpoint; the link locks on.
	if err := station.SendSetpoint(gcs.Setpoint{}); err != nil {
		log.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)

	// Downlink every 10th telemetry sample (5 Hz equivalent of the
	// 50 Hz log) from inside the run, via an observer.
	sent, received, ticks := 0, 0, 0
	crashed, crashSeen := false, false
	observer := containerdrone.ObserverFuncs{
		Crash: func(at time.Duration) { crashed = true },
		Tick: func(now time.Duration, s containerdrone.Sample) {
			ticks++
			if ticks%10 != 1 {
				return
			}
			t := gcs.Telemetry{
				TimeUS: uint64(s.Time() / time.Microsecond),
				Pos:    s.Pos,
				Roll:   s.Roll, Pitch: s.Pitch, Yaw: s.Yaw,
				Crashed: crashed,
			}
			if err := link.SendTelemetry(t); err != nil {
				log.Fatal(err)
			}
			sent++
			recv, err := station.RecvTelemetry(time.Second)
			if err != nil {
				log.Fatalf("telemetry lost after %d frames: %v", received, err)
			}
			received++
			if recv.Crashed {
				crashSeen = true
			}
		},
	}

	sim, err := containerdrone.New("udpflood",
		containerdrone.WithObserver(observer))
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("flight done: crashed=%v switched=%v samples=%d\n",
		res.Crashed, res.Switched, len(res.Samples))
	fmt.Printf("streamed %d telemetry frames over UDP during the run, station received %d\n",
		sent, received)
	fmt.Printf("station observed crash flag: %v\n", crashSeen)
	last := res.Samples[len(res.Samples)-1]
	fmt.Printf("final downlinked position: (%.2f, %.2f, %.2f)\n",
		last.Pos.X, last.Pos.Y, last.Pos.Z)
}
