// Failover reproduces the paper's safety-attack experiment (Fig 6):
// the attacker kills the complex controller inside the container at
// t=12 s. The security monitor notices the motor-output stream has
// gone silent (receiving-interval rule), kills the receiving thread
// and switches the PWM path to the safety controller, which holds the
// position setpoint for the rest of the flight.
//
// A second run with the monitor disabled shows the counterfactual:
// with nobody watching, the drone flies open-loop on its last motor
// command and is lost.
package main

import (
	"context"
	"fmt"
	"log"

	"containerdrone"
)

func run(opts ...containerdrone.Option) *containerdrone.Result {
	sim, err := containerdrone.New("kill", opts...)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("Complex controller killed at t=12s (Fig 6)")

	res := run()
	fmt.Println("\n== with security monitor ==")
	fmt.Print(res.Summary())
	for _, ax := range []containerdrone.Axis{containerdrone.AxisX, containerdrone.AxisY, containerdrone.AxisZ} {
		fmt.Printf("  %s %s\n", ax, res.Sparkline(ax, 60))
	}
	for _, ev := range res.Trace {
		fmt.Println(" ", ev)
	}

	bad := run(containerdrone.WithParam("monitor.enabled", 0))
	fmt.Println("\n== monitor disabled (counterfactual) ==")
	fmt.Print(bad.Summary())
	fmt.Printf("  Z %s\n", bad.Sparkline(containerdrone.AxisZ, 60))
}
