// Failover reproduces the paper's safety-attack experiment (Fig 6):
// the attacker kills the complex controller inside the container at
// t=12 s. The security monitor notices the motor-output stream has
// gone silent (receiving-interval rule), kills the receiving thread
// and switches the PWM path to the safety controller, which holds the
// position setpoint for the rest of the flight.
//
// A second run with the monitor disabled shows the counterfactual:
// with nobody watching, the drone flies open-loop on its last motor
// command and is lost.
package main

import (
	"fmt"
	"log"

	"containerdrone/internal/core"
	"containerdrone/internal/telemetry"
)

func run(cfg core.Config) *core.Result {
	sys, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return sys.Run()
}

func main() {
	fmt.Println("Complex controller killed at t=12s (Fig 6)")

	res := run(core.ScenarioKill())
	fmt.Println("\n== with security monitor ==")
	fmt.Print(res.Summary())
	fmt.Printf("  X %s\n", res.Log.Sparkline(telemetry.AxisX, 60))
	fmt.Printf("  Y %s\n", res.Log.Sparkline(telemetry.AxisY, 60))
	fmt.Printf("  Z %s\n", res.Log.Sparkline(telemetry.AxisZ, 60))
	for _, ev := range res.Trace.Events() {
		fmt.Println(" ", ev)
	}

	cfg := core.ScenarioKill()
	cfg.MonitorEnabled = false
	bad := run(cfg)
	fmt.Println("\n== monitor disabled (counterfactual) ==")
	fmt.Print(bad.Summary())
	fmt.Printf("  Z %s\n", bad.Log.Sparkline(telemetry.AxisZ, 60))
}
