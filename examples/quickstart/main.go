// Quickstart: fly the full ContainerDrone stack for ten simulated
// seconds with every protection enabled and no attack, then print the
// flight summary. This is the smallest end-to-end use of the public
// SDK: build a Sim from a registered scenario with options, Run it
// under a context, read the Result.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"containerdrone"
)

func main() {
	sim, err := containerdrone.New("baseline",
		containerdrone.WithDuration(10*time.Second))
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("ContainerDrone quickstart — 10 s position hold at (0, 0, 1)")
	fmt.Print(res.Summary())
	fmt.Printf("  Z %s\n", res.Sparkline(containerdrone.AxisZ, 60))
	fmt.Printf("  streams:\n")
	for _, st := range res.Streams {
		fmt.Printf("    %-14s port %-6d %2dB/frame  %5d packets\n",
			st.Name, st.Port, st.FrameSizeB, st.Packets)
	}
	if res.Crashed {
		log.Fatal("unexpected crash in the quickstart scenario")
	}
}
