// Quickstart: fly the full ContainerDrone stack for ten simulated
// seconds with every protection enabled and no attack, then print the
// flight summary. This is the smallest end-to-end use of the
// framework: build a Config from the scenario registry, construct the
// System, Run it, read the Result.
package main

import (
	"fmt"
	"log"
	"time"

	"containerdrone/internal/core"
	"containerdrone/internal/telemetry"
)

func main() {
	cfg := core.MustBuild("baseline", core.Options{Duration: 10 * time.Second})

	sys, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res := sys.Run()

	fmt.Println("ContainerDrone quickstart — 10 s position hold at (0, 0, 1)")
	fmt.Print(res.Summary())
	fmt.Printf("  Z %s\n", res.Log.Sparkline(telemetry.AxisZ, 60))
	fmt.Printf("  streams:\n")
	for _, st := range res.Streams {
		fmt.Printf("    %-14s port %-6d %2dB/frame  %5d packets\n",
			st.Name, st.Port, st.FrameSize, st.Packets)
	}
	if res.Crashed {
		log.Fatal("unexpected crash in the quickstart scenario")
	}
}
