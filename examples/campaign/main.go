// Campaign shows the library use of the parallel Monte-Carlo runner:
// sweep the UDP flood's packet rate across a population of seeds and
// read the defense off the aggregates — failover rate, detection-time
// percentiles, and worst-case deviation per intensity.
//
// Campaign workers run on the warm pool: each worker builds its sweep
// point's simulation once and rewinds it between seeds (byte-identical
// to a cold build, enforced by the repo's reset-equivalence suite), so
// the steady state of the sweep allocates nothing per run. A record
// observer watches runs complete live, off the workers' hot path.
//
// The same sweep is available from the CLI:
//
//	containerdrone -scenario udpflood -runs 8 -sweep attack.rate=2000,8000,32000
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"containerdrone"
)

func main() {
	done := 0
	c := containerdrone.NewCampaign("udpflood",
		containerdrone.WithSweep("attack.rate", 2000, 8000, 32000),
		containerdrone.WithRuns(8),
		containerdrone.WithBaseSeed(1),
		containerdrone.WithRunDuration(15*time.Second),
		// Live progress: records arrive in completion order on a single
		// emitter goroutine as the campaign flies.
		containerdrone.WithRecordObserver(func(r containerdrone.Record) {
			done++
			fmt.Printf("\r%2d/24 runs  (latest: %s seed %d)", done, r.Point, r.Seed)
		}),
	)
	res, err := c.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	fmt.Printf("UDP-flood intensity sweep: %d points × %d seeds\n\n",
		res.Points, res.Runs)
	fmt.Print(res.Table())

	fmt.Println("\nper-run records (CSV):")
	if err := res.WriteRecordsCSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
