// Campaign shows the library use of the parallel Monte-Carlo runner:
// sweep the UDP flood's packet rate across a population of seeds and
// read the defense off the aggregates — failover rate, detection-time
// percentiles, and worst-case deviation per intensity.
//
// The same sweep is available from the CLI:
//
//	containerdrone -scenario udpflood -runs 8 -sweep attack.rate=2000,8000,32000
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"containerdrone/internal/campaign"
)

func main() {
	spec := campaign.Spec{
		Points: campaign.Expand("udpflood", nil, []campaign.Sweep{
			{Key: "attack.rate", Values: []float64{2000, 8000, 32000}},
		}),
		Runs:     8,
		Parallel: 0, // NumCPU
		BaseSeed: 1,
		Duration: 15 * time.Second,
	}
	records, err := campaign.Run(spec)
	if err != nil {
		log.Fatal(err)
	}
	aggs := campaign.AggregateRecords(records)

	fmt.Printf("UDP-flood intensity sweep: %d points × %d seeds\n\n",
		len(spec.Points), spec.Runs)
	fmt.Print(campaign.Table(aggs))

	fmt.Println("\nper-run records (CSV):")
	if err := campaign.WriteRecordsCSV(os.Stdout, records); err != nil {
		log.Fatal(err)
	}
}
