// Campaign shows the library use of the parallel Monte-Carlo runner:
// sweep the UDP flood's packet rate across a population of seeds and
// read the defense off the aggregates — failover rate, detection-time
// percentiles, and worst-case deviation per intensity.
//
// The same sweep is available from the CLI:
//
//	containerdrone -scenario udpflood -runs 8 -sweep attack.rate=2000,8000,32000
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"containerdrone"
)

func main() {
	c := containerdrone.NewCampaign("udpflood",
		containerdrone.WithSweep("attack.rate", 2000, 8000, 32000),
		containerdrone.WithRuns(8),
		containerdrone.WithBaseSeed(1),
		containerdrone.WithRunDuration(15*time.Second),
	)
	res, err := c.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("UDP-flood intensity sweep: %d points × %d seeds\n\n",
		res.Points, res.Runs)
	fmt.Print(res.Table())

	fmt.Println("\nper-run records (CSV):")
	if err := res.WriteRecordsCSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
